(* Tests for the simulator substrate: event queue ordering, wormhole
   mechanics (pipelining, blocking, FIFO contention), network
   construction and the runner protocol. *)

module EQ = Fatnet_sim.Event_queue
module WH = Fatnet_sim.Wormhole
module Net = Fatnet_sim.Network
module SN = Fatnet_sim.System_net
module Runner = Fatnet_sim.Runner
module Presets = Fatnet_model.Presets

let check_float = Alcotest.(check (float 1e-9))

(* ---- Event queue ---- *)

let event_queue_orders_by_time () =
  let q = EQ.create () in
  List.iter (fun (t, v) -> EQ.push q ~time:t v) [ (3., "c"); (1., "a"); (2., "b") ];
  let order = List.init 3 (fun _ -> match EQ.pop q with Some (_, v) -> v | None -> "?") in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] order

let event_queue_fifo_ties () =
  let q = EQ.create () in
  List.iter (fun v -> EQ.push q ~time:1. v) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> match EQ.pop q with Some (_, v) -> v | None -> -1) in
  Alcotest.(check (list int)) "insertion order at equal times" [ 1; 2; 3; 4 ] order

let event_queue_empty () =
  let q : int EQ.t = EQ.create () in
  Alcotest.(check bool) "empty" true (EQ.is_empty q);
  Alcotest.(check bool) "pop none" true (EQ.pop q = None);
  Alcotest.(check bool) "peek none" true (EQ.peek_time q = None)

let event_queue_rejects_bad_times () =
  let q : int EQ.t = EQ.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_queue.push: time must be finite and non-negative")
    (fun () -> EQ.push q ~time:nan 1)

let event_queue_heap_property =
  QCheck.Test.make ~name:"pops come out sorted" ~count:200
    QCheck.(list (float_range 0. 1000.))
    (fun ts ->
      let q = EQ.create () in
      List.iter (fun t -> EQ.push q ~time:t ()) ts;
      let rec drain acc =
        match EQ.pop q with Some (t, ()) -> drain (t :: acc) | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort Float.compare ts)

(* Differential oracle: the seed's boxed binary heap, kept verbatim in
   reference_event_queue.ml, must agree with the SoA 4-ary heap on
   every pop — time ties (frequent under a discrete time grid)
   resolving in FIFO push order included. *)
let event_queue_matches_reference =
  QCheck.Test.make ~name:"SoA heap matches the boxed reference heap" ~count:300
    QCheck.(list (option (int_range 0 9)))
    (fun ops ->
      let module RQ = Reference_event_queue in
      let q = EQ.create () and r = RQ.create () in
      let id = ref 0 in
      let ok = ref true in
      let pop_both () = if EQ.pop q <> RQ.pop r then ok := false in
      List.iter
        (function
          | Some t ->
              let time = float_of_int t in
              EQ.push q ~time !id;
              RQ.push r ~time !id;
              incr id
          | None -> pop_both ())
        ops;
      if EQ.length q <> RQ.length r then ok := false;
      while not (EQ.is_empty q && RQ.is_empty r) do
        pop_both ()
      done;
      !ok)

(* ---- Wormhole engine on a synthetic linear network ---- *)

(* A chain of [n] channels with unit hop time; channel n-1 is the
   ejection.  Useful for hand-computable pipelining checks. *)
let linear_engine ?(tau = fun _ -> 1.) n =
  WH.create ~channel_count:n ~hop_time:tau ~is_ejection:(fun c -> c = n - 1) ()

let pipeline_latency () =
  (* M flits over L unit channels: tail delivered at L + (M-1). *)
  let engine = linear_engine 4 in
  let finish = ref nan in
  WH.submit engine ~time:0. ~route:[| 0; 1; 2; 3 |] ~flits:5
    ~on_delivered:(fun t -> finish := t) ();
  WH.run engine;
  check_float "wormhole pipeline" (4. +. 4.) !finish

let pipeline_bottleneck () =
  (* Mixed speeds: pace is set by the slowest channel. *)
  let tau c = if c = 1 then 3. else 1. in
  let engine = linear_engine ~tau 3 in
  let finish = ref nan in
  WH.submit engine ~time:0. ~route:[| 0; 1; 2 |] ~flits:4 ~on_delivered:(fun t -> finish := t) ();
  WH.run engine;
  (* head: 1+3+1 = 5; remaining 3 flits each 3 behind on the bottleneck,
     final hop 1: tail = 1 + 3 + 3*3 + 1 = 14 *)
  check_float "bottleneck pacing" 14. !finish

let single_flit_message () =
  let engine = linear_engine 3 in
  let finish = ref nan in
  WH.submit engine ~time:0. ~route:[| 0; 1; 2 |] ~flits:1 ~on_delivered:(fun t -> finish := t) ();
  WH.run engine;
  check_float "head-only worm" 3. !finish

let fifo_contention () =
  (* Two worms sharing the full path: second starts after the first's
     tail frees the injection channel. *)
  let engine = linear_engine 2 in
  let t1 = ref nan and t2 = ref nan in
  WH.submit engine ~time:0. ~route:[| 0; 1 |] ~flits:3 ~on_delivered:(fun t -> t1 := t) ();
  WH.submit engine ~time:0. ~route:[| 0; 1 |] ~flits:3 ~on_delivered:(fun t -> t2 := t) ();
  WH.run engine;
  (* pipeline: L + (M-1) = 2 + 2 *)
  check_float "first worm" 4. !t1;
  Alcotest.(check bool) "second delayed" true (!t2 > !t1);
  (* channel 0 frees when worm 1's tail enters channel 1 (t=3); worm 2
     then needs its own 4 units *)
  check_float "second worm" 7. !t2

let blocking_holds_worm () =
  (* Worm B's path shares channel 2 with worm A; B must wait until
     A's tail clears it, and the engine must fully drain. *)
  let tau _ = 1. in
  let engine =
    WH.create ~channel_count:6 ~hop_time:tau
      ~is_ejection:(fun c -> c = 3 || c = 5)
      ()
  in
  let done_a = ref nan and done_b = ref nan in
  WH.submit engine ~time:0. ~route:[| 0; 2; 3 |] ~flits:4 ~on_delivered:(fun t -> done_a := t) ();
  WH.submit engine ~time:0.5 ~route:[| 1; 2; 4; 5 |] ~flits:4
    ~on_delivered:(fun t -> done_b := t) ();
  WH.run engine;
  Alcotest.(check bool) "a done" true (Float.is_finite !done_a);
  Alcotest.(check bool) "b done after a" true (!done_b > !done_a);
  Alcotest.(check int) "no stuck reservations" 0 (WH.busy_channels engine)

let gated_worm_waits_for_release () =
  let engine = linear_engine 2 in
  let finish = ref nan in
  let g = WH.submit_gated engine ~route:[| 0; 1 |] ~flits:2 ~on_delivered:(fun t -> finish := t) () in
  (* Release flits at t=10 and t=12 via scheduled callbacks. *)
  WH.schedule engine ~time:10. (fun _ -> WH.release_flit engine g 0);
  WH.schedule engine ~time:12. (fun _ -> WH.release_flit engine g 1);
  WH.run engine;
  (* head enters at 10, tail released 12, crosses both channels: 14 *)
  check_float "gated timing" 14. !finish

let release_out_of_order_rejected () =
  let engine = linear_engine 2 in
  let g = WH.submit_gated engine ~route:[| 0; 1 |] ~flits:3 ~on_delivered:ignore () in
  WH.schedule engine ~time:1. (fun _ ->
      Alcotest.check_raises "order enforced"
        (Invalid_argument "Wormhole.release_flit: flits must be released in order") (fun () ->
          WH.release_flit engine g 2));
  WH.run engine

let per_flit_delivery_callbacks () =
  let engine = linear_engine 2 in
  let seen = ref [] in
  WH.submit engine ~time:0. ~route:[| 0; 1 |] ~flits:3
    ~on_flit_delivered:(fun j t -> seen := (j, t) :: !seen)
    ~on_delivered:ignore ();
  WH.run engine;
  let seen = List.rev !seen in
  Alcotest.(check int) "three flits" 3 (List.length seen);
  List.iteri
    (fun i (j, t) ->
      Alcotest.(check int) "flit order" i j;
      check_float "flit timing" (2. +. float_of_int i) t)
    seen

let engine_validates_routes () =
  let engine = linear_engine 3 in
  Alcotest.check_raises "mid-route ejection"
    (Invalid_argument "Wormhole.submit: route must end (and only end) in an ejection channel")
    (fun () -> WH.submit engine ~time:0. ~route:[| 2; 0 |] ~flits:1 ~on_delivered:ignore ());
  Alcotest.check_raises "empty" (Invalid_argument "Wormhole.submit: empty route") (fun () ->
      WH.submit engine ~time:0. ~route:[||] ~flits:1 ~on_delivered:ignore ())

let latency_never_below_physical_minimum =
  QCheck.Test.make ~name:"delivery never beats the zero-load pipeline bound" ~count:40
    QCheck.(pair small_int (int_range 2 20))
    (fun (seed, count) ->
      let rng = Fatnet_prng.Rng.create ~seed:(Int64.of_int seed) () in
      (* random heterogeneous hop times on a small tree *)
      let net =
        Net.create ~m:4 ~n:2
          ~node_hop_time:(0.5 +. Fatnet_prng.Rng.float rng)
          ~switch_hop_time:(0.5 +. Fatnet_prng.Rng.float rng)
          ~with_aux:false
      in
      let engine =
        WH.create ~channel_count:(Net.channel_count net) ~hop_time:(Net.hop_time net)
          ~is_ejection:(Net.is_ejection net) ()
      in
      let flits = 1 + Fatnet_prng.Rng.int rng 16 in
      let ok = ref true in
      for _ = 1 to count do
        let src = Fatnet_prng.Rng.int rng 8 in
        let dst = Fatnet_prng.Rng.int_excluding rng 8 ~excluding:src in
        let t0 = Fatnet_prng.Rng.uniform rng ~lo:0. ~hi:10. in
        let route = Net.route net ~src:(Net.Leaf src) ~dst:(Net.Leaf dst) in
        let taus = Array.map (Net.hop_time net) route in
        let path = Array.fold_left ( +. ) 0. taus in
        let bottleneck = Array.fold_left Float.max 0. taus in
        let minimum = path +. (float_of_int (flits - 1) *. bottleneck) in
        WH.submit engine ~time:t0 ~route ~flits
          ~on_delivered:(fun t ->
            if t -. t0 < minimum -. 1e-9 then ok := false)
          ()
      done;
      WH.run engine;
      !ok && WH.busy_channels engine = 0)

let busy_time_bounded_by_clock =
  QCheck.Test.make ~name:"channel busy time never exceeds the clock" ~count:30
    QCheck.small_int
    (fun seed ->
      let net = Net.create ~m:4 ~n:2 ~node_hop_time:1. ~switch_hop_time:2. ~with_aux:false in
      let engine =
        WH.create ~channel_count:(Net.channel_count net) ~hop_time:(Net.hop_time net)
          ~is_ejection:(Net.is_ejection net) ()
      in
      let rng = Fatnet_prng.Rng.create ~seed:(Int64.of_int seed) () in
      for _ = 1 to 30 do
        let src = Fatnet_prng.Rng.int rng 8 in
        let dst = Fatnet_prng.Rng.int_excluding rng 8 ~excluding:src in
        WH.submit engine
          ~time:(Fatnet_prng.Rng.uniform rng ~lo:0. ~hi:5.)
          ~route:(Net.route net ~src:(Net.Leaf src) ~dst:(Net.Leaf dst))
          ~flits:8 ~on_delivered:ignore ()
      done;
      WH.run engine;
      let now = WH.now engine in
      let ok = ref true in
      for c = 0 to Net.channel_count net - 1 do
        let b = WH.channel_busy_time engine c in
        if b < -1e-9 || b > now +. 1e-9 then ok := false
      done;
      !ok)

let many_worms_all_deliver =
  QCheck.Test.make ~name:"random contention always drains" ~count:50
    QCheck.(pair small_int (int_range 1 60))
    (fun (seed, count) ->
      let net =
        Net.create ~m:4 ~n:2 ~node_hop_time:1. ~switch_hop_time:1. ~with_aux:false
      in
      let engine =
        WH.create ~channel_count:(Net.channel_count net) ~hop_time:(Net.hop_time net)
          ~is_ejection:(Net.is_ejection net) ()
      in
      let rng = Fatnet_prng.Rng.create ~seed:(Int64.of_int seed) () in
      let delivered = ref 0 in
      for _ = 1 to count do
        let src = Fatnet_prng.Rng.int rng 8 in
        let dst = Fatnet_prng.Rng.int_excluding rng 8 ~excluding:src in
        let t = Fatnet_prng.Rng.uniform rng ~lo:0. ~hi:20. in
        WH.submit engine ~time:t
          ~route:(Net.route net ~src:(Net.Leaf src) ~dst:(Net.Leaf dst))
          ~flits:8
          ~on_delivered:(fun _ -> incr delivered)
          ()
      done;
      WH.run engine;
      !delivered = count && WH.busy_channels engine = 0)

(* Tentpole equivalence: with streaming on, a worm that owns its whole
   remaining route is finished in closed form; the delivered stream
   must be bit-identical to the slow per-flit engine's.  Same-instant
   deliveries of unrelated worms carry no intrinsic order (see
   wormhole.ml), so streams are compared as time-sorted records —
   which still pins every delivery time bit-for-bit and the full
   cross-instant order.  Chained gated worms exercise the takeover in
   the same way the runner's cut-through C/D chains do. *)
let streaming_matches_slow_path =
  QCheck.Test.make ~name:"streaming fast path reproduces the slow engine" ~count:80
    QCheck.(pair small_int (int_range 1 60))
    (fun (seed, count) ->
      let net =
        Net.create ~m:4 ~n:2 ~node_hop_time:1. ~switch_hop_time:2. ~with_aux:false
      in
      let run_engine streaming =
        let engine =
          WH.create ~streaming ~channel_count:(Net.channel_count net)
            ~hop_time:(Net.hop_time net) ~is_ejection:(Net.is_ejection net) ()
        in
        let rng = Fatnet_prng.Rng.create ~seed:(Int64.of_int seed) () in
        let stream = ref [] in
        let record tag j time = stream := (time, tag, j) :: !stream in
        for i = 0 to count - 1 do
          let src = Fatnet_prng.Rng.int rng 8 in
          let dst = Fatnet_prng.Rng.int_excluding rng 8 ~excluding:src in
          let flits = 1 + Fatnet_prng.Rng.int rng 8 in
          let t = float_of_int (Fatnet_prng.Rng.int rng 20) in
          let route = Net.route net ~src:(Net.Leaf src) ~dst:(Net.Leaf dst) in
          if Fatnet_prng.Rng.int rng 2 = 0 then
            WH.submit engine ~time:t ~route ~flits ~on_flit_delivered:(record (2 * i))
              ~on_delivered:ignore ()
          else begin
            let src2 = Fatnet_prng.Rng.int rng 8 in
            let dst2 = Fatnet_prng.Rng.int_excluding rng 8 ~excluding:src2 in
            let route2 = Net.route net ~src:(Net.Leaf src2) ~dst:(Net.Leaf dst2) in
            let w2 =
              WH.submit_gated engine ~route:route2 ~flits
                ~on_flit_delivered:(record ((2 * i) + 1))
                ~on_delivered:ignore ()
            in
            WH.submit engine ~time:t ~route ~flits
              ~on_flit_delivered:(fun j _ -> WH.release_flit engine w2 j)
              ~on_delivered:ignore ()
          end
        done;
        WH.run engine;
        (List.sort compare !stream, WH.now engine, WH.busy_channels engine)
      in
      let fast, fast_end, fast_busy = run_engine true in
      let slow, slow_end, slow_busy = run_engine false in
      fast = slow && fast_end = slow_end && fast_busy = 0 && slow_busy = 0)

(* ---- Network wrapper ---- *)

let network_channel_counts () =
  let net = Net.create ~m:4 ~n:2 ~node_hop_time:1. ~switch_hop_time:2. ~with_aux:true in
  Alcotest.(check int) "aux ports = roots" 2 (Net.aux_port_count net);
  Alcotest.(check int) "channels = tree + 2/port"
    (Fatnet_topology.Mport_tree.channel_count (Net.tree net) + 4)
    (Net.channel_count net)

let network_aux_routes_valid () =
  let net = Net.create ~m:4 ~n:2 ~node_hop_time:1. ~switch_hop_time:2. ~with_aux:true in
  for x = 0 to Net.node_count net - 1 do
    for p = 0 to Net.aux_port_count net - 1 do
      let up = Net.route net ~src:(Net.Leaf x) ~dst:(Net.Aux_port p) in
      (* ascent: inject + (n-1) ups + aux eject = n+1 channels *)
      Alcotest.(check int) "ascent length" 3 (Array.length up);
      Alcotest.(check bool) "ends in ejection" true (Net.is_ejection net up.(2));
      let down = Net.route net ~src:(Net.Aux_port p) ~dst:(Net.Leaf x) in
      Alcotest.(check int) "descent length" 3 (Array.length down);
      Alcotest.(check bool) "ends at node" true (Net.is_ejection net down.(2))
    done
  done

let network_aux_hop_times () =
  let net = Net.create ~m:4 ~n:2 ~node_hop_time:1.5 ~switch_hop_time:2.5 ~with_aux:true in
  let up = Net.route net ~src:(Net.Leaf 0) ~dst:(Net.Aux_port 1) in
  check_float "injection" 1.5 (Net.hop_time net up.(0));
  check_float "up link" 2.5 (Net.hop_time net up.(1));
  check_float "aux link" 1.5 (Net.hop_time net up.(2))

let network_rejects_bad_routes () =
  let no_aux = Net.create ~m:4 ~n:1 ~node_hop_time:1. ~switch_hop_time:1. ~with_aux:false in
  Alcotest.check_raises "no aux" (Invalid_argument "Network.route: network has no aux ports")
    (fun () -> ignore (Net.route no_aux ~src:(Net.Leaf 0) ~dst:(Net.Aux_port 0)))

(* ---- System net ---- *)

let message = Presets.message ~m_flits:8 ~d_m_bytes:256.

let small_system =
  Fatnet_model.Params.homogeneous ~m:4 ~tree_depth:2 ~clusters:4 ~icn1:Presets.net1
    ~ecn1:Presets.net2 ~icn2:Presets.net1

let system_net_segments () =
  let net = SN.create ~system:small_system ~message in
  let intra = SN.segments net ~src:0 ~dst:3 ~egress_port:0 ~ingress_port:0 ~icn2_choice:0 in
  Alcotest.(check int) "intra one segment" 1 (List.length intra);
  let inter = SN.segments net ~src:0 ~dst:12 ~egress_port:1 ~ingress_port:0 ~icn2_choice:0 in
  Alcotest.(check int) "inter three segments" 3 (List.length inter);
  List.iter
    (fun seg ->
      let last = seg.(Array.length seg - 1) in
      Alcotest.(check bool) "segment ends in ejection" true (SN.is_ejection net last);
      Array.iteri
        (fun i c ->
          if i < Array.length seg - 1 then
            Alcotest.(check bool) "no mid-segment ejection" false (SN.is_ejection net c))
        seg)
    inter

let system_net_segments_disjoint_networks () =
  (* the three inter segments use disjoint channel id ranges *)
  let net = SN.create ~system:small_system ~message in
  match SN.segments net ~src:0 ~dst:12 ~egress_port:0 ~ingress_port:1 ~icn2_choice:1 with
  | [ s1; s2; s3 ] ->
      let ranges = List.map (fun s -> Array.fold_left max 0 s) [ s1; s2; s3 ] in
      ignore ranges;
      let sets = List.map (fun s -> Array.to_list s) [ s1; s2; s3 ] in
      List.iteri
        (fun i a ->
          List.iteri
            (fun j b ->
              if i < j then
                List.iter
                  (fun c -> Alcotest.(check bool) "disjoint" false (List.mem c b))
                  a)
            sets)
        sets
  | _ -> Alcotest.fail "expected three segments"

(* ---- Runner ---- *)

let runner_protocol_counts () =
  let config = { Runner.quick_config with Runner.warmup = 50; measured = 200; drain = 50 } in
  let r = Runner.run ~config ~system:small_system ~message ~lambda_g:1e-3 () in
  Alcotest.(check int) "generated = warmup+measured+drain" 300 r.Runner.generated;
  Alcotest.(check int) "all measured delivered" 200 r.Runner.delivered;
  Alcotest.(check int) "summary count" 200 r.Runner.latency.Fatnet_stats.Summary.count

let runner_deterministic () =
  let config = { Runner.quick_config with Runner.warmup = 20; measured = 100; drain = 20 } in
  let a = Runner.run ~config ~system:small_system ~message ~lambda_g:1e-3 () in
  let b = Runner.run ~config ~system:small_system ~message ~lambda_g:1e-3 () in
  check_float "same seed, same mean" a.Runner.latency.Fatnet_stats.Summary.mean
    b.Runner.latency.Fatnet_stats.Summary.mean

let runner_seed_changes_result () =
  let config = { Runner.quick_config with Runner.warmup = 20; measured = 100; drain = 20 } in
  let a = Runner.run ~config ~system:small_system ~message ~lambda_g:1e-3 () in
  let b =
    Runner.run
      ~config:{ config with Runner.seed = 999L }
      ~system:small_system ~message ~lambda_g:1e-3 ()
  in
  Alcotest.(check bool) "different seeds differ" true
    (a.Runner.latency.Fatnet_stats.Summary.mean
    <> b.Runner.latency.Fatnet_stats.Summary.mean)

let runner_latency_increases_with_load () =
  let config = { Runner.quick_config with Runner.warmup = 100; measured = 1000; drain = 100 } in
  let mean lambda_g =
    (Runner.run ~config ~system:small_system ~message ~lambda_g ()).Runner.latency
      .Fatnet_stats.Summary.mean
  in
  let light = mean 1e-4 and heavy = mean 5e-3 in
  Alcotest.(check bool) "load raises latency" true (heavy > light)

let runner_intra_inter_split () =
  let config = { Runner.quick_config with Runner.warmup = 50; measured = 500; drain = 50 } in
  let r = Runner.run ~config ~system:small_system ~message ~lambda_g:1e-3 () in
  Alcotest.(check int) "classes partition the batch"
    r.Runner.latency.Fatnet_stats.Summary.count
    (r.Runner.intra_latency.Fatnet_stats.Summary.count
    + r.Runner.inter_latency.Fatnet_stats.Summary.count);
  Alcotest.(check bool) "inter slower than intra" true
    (r.Runner.inter_latency.Fatnet_stats.Summary.mean
    > r.Runner.intra_latency.Fatnet_stats.Summary.mean)

let runner_store_and_forward_slower () =
  let config = { Runner.quick_config with Runner.warmup = 50; measured = 500; drain = 50 } in
  let mean mode =
    (Runner.run
       ~config:{ config with Runner.cd_mode = mode }
       ~system:small_system ~message ~lambda_g:1e-3 ())
      .Runner.inter_latency.Fatnet_stats.Summary.mean
  in
  Alcotest.(check bool) "store-and-forward costs more" true
    (mean Runner.Store_and_forward > mean Runner.Cut_through)

let runner_confidence_interval () =
  let config = { Runner.quick_config with Runner.warmup = 50; measured = 3000; drain = 50 } in
  let r = Runner.run ~config ~system:small_system ~message ~lambda_g:1e-3 () in
  Alcotest.(check bool) "CI is positive and finite" true
    (Float.is_finite r.Runner.ci95_half_width && r.Runner.ci95_half_width > 0.);
  Alcotest.(check bool) "CI is small relative to the mean" true
    (r.Runner.ci95_half_width < r.Runner.latency.Fatnet_stats.Summary.mean)

let runner_bottleneck_report () =
  let config = { Runner.quick_config with Runner.warmup = 50; measured = 1000; drain = 50 } in
  let r = Runner.run ~config ~system:small_system ~message ~lambda_g:2e-3 () in
  Alcotest.(check int) "five entries" 5 (List.length r.Runner.bottlenecks);
  let utils = List.map snd r.Runner.bottlenecks in
  Alcotest.(check bool) "utilizations in [0,1]" true
    (List.for_all (fun u -> u >= 0. && u <= 1.) utils);
  Alcotest.(check bool) "sorted descending" true
    (List.sort (fun a b -> Float.compare b a) utils = utils)

let runner_single_cluster_all_intra () =
  let solo =
    Fatnet_model.Params.homogeneous ~m:4 ~tree_depth:2 ~clusters:1 ~icn1:Presets.net1
      ~ecn1:Presets.net2 ~icn2:Presets.net1
  in
  let config = { Runner.quick_config with Runner.warmup = 10; measured = 100; drain = 10 } in
  let r = Runner.run ~config ~system:solo ~message ~lambda_g:1e-3 () in
  Alcotest.(check int) "no inter traffic" 0 r.Runner.inter_latency.Fatnet_stats.Summary.count

let runner_trace_complete () =
  let records = ref [] in
  let config =
    {
      Runner.quick_config with
      Runner.warmup = 20;
      measured = 100;
      drain = 20;
      trace = Some (fun r -> records := r :: !records);
    }
  in
  let r = Runner.run ~config ~system:small_system ~message ~lambda_g:1e-3 () in
  Alcotest.(check int) "every generated message is traced" r.Runner.generated
    (List.length !records);
  Alcotest.(check int) "measured flags match" 100
    (List.length
       (List.filter (fun (t : Runner.trace_record) -> t.Runner.measured) !records));
  List.iter
    (fun (t : Runner.trace_record) ->
      Alcotest.(check bool) "delivery after generation" true
        (t.Runner.delivered_at > t.Runner.generated_at))
    !records

(* Telemetry must be a pure observer: a run with a live registry has
   to reproduce the metrics-off run bit for bit (instrumentation never
   touches the event schedule), while the snapshot's own counters must
   agree with the result record. *)
let runner_metrics_transparent () =
  let module Metrics = Fatnet_obs.Metrics in
  let config = { Runner.quick_config with Runner.warmup = 50; measured = 500; drain = 50 } in
  let off = Runner.run ~config ~system:small_system ~message ~lambda_g:1e-3 () in
  let reg = Metrics.create () in
  let on =
    Runner.run
      ~config:{ config with Runner.metrics = reg }
      ~system:small_system ~message ~lambda_g:1e-3 ()
  in
  let hex = Printf.sprintf "%h" in
  Alcotest.(check string) "mean latency bits"
    (hex off.Runner.latency.Fatnet_stats.Summary.mean)
    (hex on.Runner.latency.Fatnet_stats.Summary.mean);
  Alcotest.(check string) "end time bits" (hex off.Runner.end_time) (hex on.Runner.end_time);
  Alcotest.(check int) "event count" off.Runner.events on.Runner.events;
  let snap = Metrics.snapshot reg in
  let counter name =
    match Metrics.Snapshot.find snap name with
    | Some (Metrics.Snapshot.Counter n) -> n
    | _ -> Alcotest.failf "missing counter %s" name
  in
  Alcotest.(check int) "sim_events agrees" on.Runner.events (counter "sim_events");
  Alcotest.(check int) "sim_messages_generated agrees" on.Runner.generated
    (counter "sim_messages_generated");
  Alcotest.(check int) "sim_messages_delivered agrees" on.Runner.delivered
    (counter "sim_messages_delivered");
  let utilization =
    List.filter
      (fun (s : Metrics.Snapshot.series) -> s.Metrics.Snapshot.name = "sim_channel_utilization")
      snap.Metrics.Snapshot.series
  in
  Alcotest.(check bool) "channel utilization histograms present" true (utilization <> []);
  List.iter
    (fun (s : Metrics.Snapshot.series) ->
      Alcotest.(check bool) "labelled by network and level" true
        (List.mem_assoc "network" s.Metrics.Snapshot.labels
        && List.mem_assoc "level" s.Metrics.Snapshot.labels))
    utilization

(* Regression: with [drain = 0] no message carries the serial that
   stamps the measure-phase end, so the phase gauge used to stay NaN
   and leak into the exported snapshot.  The gauges must be finite for
   every phase, and the JSON snapshot must survive a round trip (the
   'experiments report' path). *)
let runner_drain_zero_metrics_finite () =
  let module Metrics = Fatnet_obs.Metrics in
  let config = { Runner.quick_config with Runner.warmup = 50; measured = 500; drain = 0 } in
  let reg = Metrics.create () in
  let r =
    Runner.run
      ~config:{ config with Runner.metrics = reg }
      ~system:small_system ~message ~lambda_g:1e-3 ()
  in
  let snap = Metrics.snapshot reg in
  let phase_end phase =
    match Metrics.Snapshot.find ~labels:[ ("phase", phase) ] snap "sim_phase_end" with
    | Some (Metrics.Snapshot.Gauge g) -> g
    | _ -> Alcotest.failf "missing sim_phase_end{phase=%s}" phase
  in
  List.iter
    (fun phase ->
      Alcotest.(check bool)
        (Printf.sprintf "sim_phase_end{phase=%s} finite" phase)
        true
        (Float.is_finite (phase_end phase)))
    [ "warmup"; "measure"; "drain" ];
  Alcotest.(check (float 0.)) "measure phase ends where the run does" r.Runner.end_time
    (phase_end "measure");
  let json = Metrics.Snapshot.to_json snap in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "no non-finite value in the snapshot" false
    (contains json "\"nan\"" || contains json "\"inf\"" || contains json "\"-inf\"");
  match Metrics.Snapshot.of_json json with
  | Error e -> Alcotest.failf "snapshot does not re-read: %s" e
  | Ok reread ->
      Alcotest.(check int) "round trip preserves every series"
        (List.length snap.Metrics.Snapshot.series)
        (List.length reread.Metrics.Snapshot.series)

(* Golden determinism regression: full quick_config runs on both paper
   organizations and both C/D modes, pinned bit-for-bit (means are
   compared as %h images).  These values were captured from the slow
   per-flit engine; the streaming engine reproducing them exactly is
   the integrated form of the equivalence property above, and any
   unintended change to event ordering, float evaluation order or the
   PRNG stream shows up here as a bit difference. *)
let runner_golden_determinism () =
  let message = Presets.message ~m_flits:32 ~d_m_bytes:256. in
  let hex = Printf.sprintf "%h" in
  let check name system mode golden_mean golden_end =
    let config = { Runner.quick_config with Runner.cd_mode = mode } in
    let r = Runner.run ~config ~system ~message ~lambda_g:1e-4 () in
    Alcotest.(check int) (name ^ ": delivered") 10_000 r.Runner.delivered;
    Alcotest.(check string)
      (name ^ ": mean latency bits")
      golden_mean
      (hex r.Runner.latency.Fatnet_stats.Summary.mean);
    Alcotest.(check string) (name ^ ": end time bits") golden_end (hex r.Runner.end_time)
  in
  check "org_544 cut-through" Presets.org_544 Runner.Cut_through "0x1.9040f8b313d1bp+5"
    "0x1.0c027fff24ec2p+18";
  check "org_544 store-and-forward" Presets.org_544 Runner.Store_and_forward
    "0x1.6ba289117470fp+6" "0x1.0c027fff24ec2p+18";
  check "org_1120 cut-through" Presets.org_1120 Runner.Cut_through "0x1.874e0479cb9bp+5"
    "0x1.3eb5837464098p+17";
  check "org_1120 store-and-forward" Presets.org_1120 Runner.Store_and_forward
    "0x1.655b917dbeaa1p+6" "0x1.3eb5837464098p+17"

(* ---- Worm_approx ---- *)

let approx_zero_load_pipeline () =
  (* single message, 3 unit-speed hops, 5 flits: head 3, tail 3 + 4 *)
  let engine = Fatnet_sim.Worm_approx.create ~channel_count:3 ~hop_time:(fun _ -> 1.) in
  let finish = ref nan in
  Fatnet_sim.Worm_approx.submit engine ~time:0. ~segments:[ [| 0; 1; 2 |] ] ~flits:5
    ~on_delivered:(fun t -> finish := t);
  Fatnet_sim.Worm_approx.run engine;
  check_float "pipeline estimate" 7. !finish

let approx_contention_serializes () =
  (* two messages sharing one channel: second waits M hops *)
  let engine = Fatnet_sim.Worm_approx.create ~channel_count:1 ~hop_time:(fun _ -> 1.) in
  let t1 = ref nan and t2 = ref nan in
  Fatnet_sim.Worm_approx.submit engine ~time:0. ~segments:[ [| 0 |] ] ~flits:4
    ~on_delivered:(fun t -> t1 := t);
  Fatnet_sim.Worm_approx.submit engine ~time:0. ~segments:[ [| 0 |] ] ~flits:4
    ~on_delivered:(fun t -> t2 := t);
  Fatnet_sim.Worm_approx.run engine;
  check_float "first" 4. !t1;
  check_float "second waits for the channel" 8. !t2

let approx_tracks_flit_engine () =
  let config = { Runner.quick_config with Runner.warmup = 200; measured = 2000; drain = 200 } in
  let lambda_g = 1e-3 in
  let flit =
    Runner.mean_latency ~config ~system:small_system ~message ~lambda_g ()
  in
  let approx =
    (Fatnet_sim.Worm_approx.simulate ~config ~system:small_system ~message ~lambda_g ())
      .Fatnet_sim.Worm_approx.mean_latency
  in
  let err = Float.abs (approx -. flit) /. flit in
  Alcotest.(check bool)
    (Printf.sprintf "engines agree at light load (%.1f%%)" (100. *. err))
    true (err < 0.25)

let approx_much_faster () =
  let config = { Runner.quick_config with Runner.warmup = 100; measured = 2000; drain = 100 } in
  let lambda_g = 1e-3 in
  let flit = Runner.run ~config ~system:small_system ~message ~lambda_g () in
  let approx = Fatnet_sim.Worm_approx.simulate ~config ~system:small_system ~message ~lambda_g () in
  Alcotest.(check bool) "at least 5x fewer events" true
    (approx.Fatnet_sim.Worm_approx.events * 5 < flit.Runner.events)

let () =
  Alcotest.run "sim"
    [
      ( "event_queue",
        [
          Alcotest.test_case "orders by time" `Quick event_queue_orders_by_time;
          Alcotest.test_case "fifo ties" `Quick event_queue_fifo_ties;
          Alcotest.test_case "empty" `Quick event_queue_empty;
          Alcotest.test_case "rejects bad times" `Quick event_queue_rejects_bad_times;
          QCheck_alcotest.to_alcotest event_queue_heap_property;
          QCheck_alcotest.to_alcotest event_queue_matches_reference;
        ] );
      ( "wormhole",
        [
          Alcotest.test_case "pipeline latency" `Quick pipeline_latency;
          Alcotest.test_case "bottleneck pacing" `Quick pipeline_bottleneck;
          Alcotest.test_case "single flit" `Quick single_flit_message;
          Alcotest.test_case "fifo contention" `Quick fifo_contention;
          Alcotest.test_case "blocking" `Quick blocking_holds_worm;
          Alcotest.test_case "gated worm" `Quick gated_worm_waits_for_release;
          Alcotest.test_case "release order" `Quick release_out_of_order_rejected;
          Alcotest.test_case "per-flit callbacks" `Quick per_flit_delivery_callbacks;
          Alcotest.test_case "route validation" `Quick engine_validates_routes;
          QCheck_alcotest.to_alcotest many_worms_all_deliver;
          QCheck_alcotest.to_alcotest latency_never_below_physical_minimum;
          QCheck_alcotest.to_alcotest busy_time_bounded_by_clock;
          QCheck_alcotest.to_alcotest streaming_matches_slow_path;
        ] );
      ( "network",
        [
          Alcotest.test_case "channel counts" `Quick network_channel_counts;
          Alcotest.test_case "aux routes" `Quick network_aux_routes_valid;
          Alcotest.test_case "aux hop times" `Quick network_aux_hop_times;
          Alcotest.test_case "rejects bad routes" `Quick network_rejects_bad_routes;
        ] );
      ( "system_net",
        [
          Alcotest.test_case "segments" `Quick system_net_segments;
          Alcotest.test_case "disjoint networks" `Quick system_net_segments_disjoint_networks;
        ] );
      ( "runner",
        [
          Alcotest.test_case "protocol counts" `Quick runner_protocol_counts;
          Alcotest.test_case "deterministic" `Quick runner_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick runner_seed_changes_result;
          Alcotest.test_case "load raises latency" `Quick runner_latency_increases_with_load;
          Alcotest.test_case "intra/inter split" `Quick runner_intra_inter_split;
          Alcotest.test_case "store-and-forward slower" `Quick runner_store_and_forward_slower;
          Alcotest.test_case "confidence interval" `Quick runner_confidence_interval;
          Alcotest.test_case "bottleneck report" `Quick runner_bottleneck_report;
          Alcotest.test_case "single cluster" `Quick runner_single_cluster_all_intra;
          Alcotest.test_case "trace" `Quick runner_trace_complete;
          Alcotest.test_case "metrics transparent" `Quick runner_metrics_transparent;
          Alcotest.test_case "drain=0 metrics finite" `Quick runner_drain_zero_metrics_finite;
          Alcotest.test_case "golden determinism" `Slow runner_golden_determinism;
        ] );
      ( "worm_approx",
        [
          Alcotest.test_case "zero-load pipeline" `Quick approx_zero_load_pipeline;
          Alcotest.test_case "contention" `Quick approx_contention_serializes;
          Alcotest.test_case "tracks flit engine" `Quick approx_tracks_flit_engine;
          Alcotest.test_case "much faster" `Quick approx_much_faster;
        ] );
    ]
