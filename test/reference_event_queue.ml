(* The growth seed's event calendar — a boxed binary heap ordered by
   (time, push seq) — kept verbatim as a test-only oracle.  The
   differential property in test_sim.ml drives it in lockstep with
   the structure-of-arrays 4-ary heap that replaced it and demands
   identical pop sequences, FIFO tie-breaking included. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* heap.(0) unused when size = 0 *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0

let length t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

(* Grow using [filler] (the entry being inserted) for unused slots, so
   no dummy payload is ever fabricated. *)
let grow t filler =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let new_cap = if cap = 0 then 64 else 2 * cap in
    let fresh = Array.make new_cap filler in
    Array.blit t.heap 0 fresh 0 t.size;
    t.heap <- fresh
  end

let push t ~time payload =
  if not (Float.is_finite time) || time < 0. then
    invalid_arg "Reference_event_queue.push: time must be finite and non-negative";
  let entry = { time; seq = t.next_seq; payload } in
  grow t entry;
  t.next_seq <- t.next_seq + 1;
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before entry t.heap.(parent) then begin
      t.heap.(!i) <- t.heap.(parent);
      t.heap.(parent) <- entry;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      let last = t.heap.(t.size) in
      t.heap.(0) <- last;
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time
