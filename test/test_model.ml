(* Tests for the analytical model: parameters, service times,
   Eqs. (1)-(39) behavioural properties, presets and sweeps. *)

module P = Fatnet_model.Params
module ST = Fatnet_model.Service_time
module V = Fatnet_model.Variants
module Intra = Fatnet_model.Intra
module Inter = Fatnet_model.Inter
module L = Fatnet_model.Latency
module Presets = Fatnet_model.Presets
module Sweep = Fatnet_model.Sweep

let check_float = Alcotest.(check (float 1e-9))

let message = Presets.message ~m_flits:32 ~d_m_bytes:256.

let small_system =
  P.homogeneous ~m:4 ~tree_depth:2 ~clusters:4 ~icn1:Presets.net1 ~ecn1:Presets.net2
    ~icn2:Presets.net1

(* ---- Params ---- *)

let cluster_sizes () =
  Alcotest.(check int) "m=8 n=3" 128 (P.cluster_size ~m:8 ~tree_depth:3);
  Alcotest.(check int) "m=4 n=5" 64 (P.cluster_size ~m:4 ~tree_depth:5);
  Alcotest.(check int) "m=4 n=1" 4 (P.cluster_size ~m:4 ~tree_depth:1)

let table1_organizations () =
  Alcotest.(check int) "N=1120" 1120 (P.total_nodes Presets.org_1120);
  Alcotest.(check int) "C=32" 32 (P.cluster_count Presets.org_1120);
  Alcotest.(check int) "n_c=2" 2 Presets.org_1120.P.icn2_depth;
  Alcotest.(check int) "N=544" 544 (P.total_nodes Presets.org_544);
  Alcotest.(check int) "C=16" 16 (P.cluster_count Presets.org_544);
  Alcotest.(check int) "n_c=3" 3 Presets.org_544.P.icn2_depth

let table2_networks () =
  check_float "net1 beta" (1. /. 500.) (P.beta Presets.net1);
  check_float "net2 beta" (1. /. 250.) (P.beta Presets.net2);
  check_float "net1 alpha_s" 0.02 Presets.net1.P.switch_latency;
  check_float "net2 alpha_n" 0.05 Presets.net2.P.network_latency

let icn2_depth_inference () =
  Alcotest.(check (option int)) "C=32 m=8" (Some 2) (P.icn2_depth_for ~m:8 ~clusters:32);
  Alcotest.(check (option int)) "C=16 m=4" (Some 3) (P.icn2_depth_for ~m:4 ~clusters:16);
  Alcotest.(check (option int)) "C=5 impossible" None (P.icn2_depth_for ~m:4 ~clusters:5)

let validation_rejects_bad_systems () =
  let bad_depth = { Presets.org_544 with P.icn2_depth = 2 } in
  Alcotest.(check bool) "wrong n_c" true (Result.is_error (P.validate bad_depth));
  let bad_net = { Presets.net1 with P.bandwidth = 0. } in
  let sys = P.homogeneous ~m:4 ~tree_depth:1 ~clusters:4 ~icn1:Presets.net1 ~ecn1:Presets.net2 ~icn2:Presets.net1 in
  let broken = { sys with P.icn2 = bad_net } in
  Alcotest.(check bool) "zero bandwidth" true (Result.is_error (P.validate broken))

let icn2_depth_edge_cases () =
  (* smallest arity: m/2 = 1, so only C = 2 has a depth *)
  Alcotest.(check (option int)) "m=2 C=2" (Some 1) (P.icn2_depth_for ~m:2 ~clusters:2);
  Alcotest.(check (option int)) "m=2 C=4 impossible" None (P.icn2_depth_for ~m:2 ~clusters:4);
  (* odd m truncates: m=7 indexes the same geometry as m=6 *)
  Alcotest.(check (option int)) "odd m=7 C=6" (Some 1) (P.icn2_depth_for ~m:7 ~clusters:6);
  Alcotest.(check (option int)) "odd m=7 C=18" (Some 2) (P.icn2_depth_for ~m:7 ~clusters:18);
  Alcotest.(check (option int)) "m=1 has no half" None (P.icn2_depth_for ~m:1 ~clusters:2);
  Alcotest.(check (option int)) "C=0" None (P.icn2_depth_for ~m:4 ~clusters:0);
  Alcotest.(check (option int)) "C=1" None (P.icn2_depth_for ~m:4 ~clusters:1)

let validation_edge_cases () =
  let is_err s = Result.is_error (P.validate s) in
  let sys = small_system in
  let with_cluster0 f =
    let clusters = Array.copy sys.P.clusters in
    clusters.(0) <- f clusters.(0);
    { sys with P.clusters }
  in
  Alcotest.(check bool) "odd m" true (is_err { sys with P.m = 5 });
  Alcotest.(check bool) "m=0" true (is_err { sys with P.m = 0 });
  Alcotest.(check bool) "no clusters" true (is_err { sys with P.clusters = [||] });
  Alcotest.(check bool) "zero tree depth" true
    (is_err (with_cluster0 (fun c -> { c with P.tree_depth = 0 })));
  Alcotest.(check bool) "negative icn1 bandwidth" true
    (is_err (with_cluster0 (fun c -> { c with P.icn1 = { c.P.icn1 with P.bandwidth = -5. } })));
  Alcotest.(check bool) "negative ecn1 wire latency" true
    (is_err
       (with_cluster0 (fun c ->
            { c with P.ecn1 = { c.P.ecn1 with P.network_latency = -1. } })));
  Alcotest.(check bool) "negative icn2 switch latency" true
    (is_err { sys with P.icn2 = { sys.P.icn2 with P.switch_latency = -0.1 } });
  Alcotest.(check bool) "icn2_depth 0" true (is_err { sys with P.icn2_depth = 0 });
  (* C ≠ 2·(m/2)^(n_c): 4 clusters at m=8 cannot form any ICN2 tree *)
  Alcotest.check_raises "make_system with impossible C"
    (Invalid_argument
       "Params.make_system: no n_c satisfies C = 2*(m/2)^n_c for C = 4, m = 8") (fun () ->
      ignore
        (P.homogeneous ~m:8 ~tree_depth:1 ~clusters:4 ~icn1:Presets.net1 ~ecn1:Presets.net2
           ~icn2:Presets.net1));
  (* a single cluster never uses ICN2: any positive depth passes *)
  let solo =
    P.make_system ~m:4 ~icn2:Presets.net1
      [ { P.tree_depth = 2; icn1 = Presets.net1; ecn1 = Presets.net2 } ]
  in
  Alcotest.(check bool) "single cluster, any depth" true
    (Result.is_ok (P.validate { solo with P.icn2_depth = 7 }))

let scaled_icn2_bandwidth () =
  let scaled = Presets.with_icn2_bandwidth_scaled Presets.org_544 ~factor:1.2 in
  check_float "bandwidth x1.2" 600. scaled.P.icn2.P.bandwidth;
  (* untouched elsewhere *)
  check_float "ecn1 unchanged" 250. scaled.P.clusters.(0).P.ecn1.P.bandwidth

(* ---- Service times ---- *)

let service_time_forms () =
  (* Eq. (11): 0.5·α_n + d_m·β; Eq. (12): α_s + d_m·β. *)
  check_float "t_cn net1" ((0.5 *. 0.01) +. (256. /. 500.)) (ST.t_cn Presets.net1 ~message);
  check_float "t_cs net1" (0.02 +. (256. /. 500.)) (ST.t_cs Presets.net1 ~message);
  check_float "t_cs net2" (0.01 +. (256. /. 250.)) (ST.t_cs Presets.net2 ~message);
  check_float "message time" (32. *. 0.5) (ST.message_time 0.5 ~message)

let relaxing_factor_direction () =
  (* ICN2 (Net.1) is twice as fast as ECN1 (Net.2): δ must shrink the
     ICN2 waits. *)
  let d = ST.relaxing_factor ~ecn1:Presets.net2 ~icn2:Presets.net1 in
  check_float "delta = 1/2" 0.5 d

(* ---- Top level ---- *)

let outgoing_probability_eq2 () =
  (* Cluster 0 of org_544 has 16 nodes out of 544. *)
  check_float "U_0" (1. -. (15. /. 543.))
    (L.outgoing_probability ~system:Presets.org_544 ~cluster:0);
  (* single-cluster system: U = 0 *)
  let solo = P.homogeneous ~m:4 ~tree_depth:2 ~clusters:1 ~icn1:Presets.net1 ~ecn1:Presets.net2 ~icn2:Presets.net1 in
  check_float "U solo" 0. (L.outgoing_probability ~system:solo ~cluster:0)

let latency_weighted_average () =
  let r = L.evaluate ~system:small_system ~message ~lambda_g:1e-4 () in
  let manual =
    List.fold_left
      (fun acc c ->
        acc +. (float_of_int c.L.nodes /. 32. *. c.L.combined))
      0. r.L.clusters
  in
  check_float "Eq. (3)" manual r.L.mean_latency

let latency_single_cluster_is_intra () =
  let solo = P.homogeneous ~m:4 ~tree_depth:2 ~clusters:1 ~icn1:Presets.net1 ~ecn1:Presets.net2 ~icn2:Presets.net1 in
  let r = L.evaluate ~system:solo ~message ~lambda_g:1e-3 () in
  match r.L.clusters with
  | [ c ] ->
      Alcotest.(check bool) "no inter component" true (c.L.inter = None);
      check_float "combined = intra" c.L.intra.Intra.total c.L.combined
  | _ -> Alcotest.fail "expected one cluster"

let latency_monotone_in_lambda () =
  let prev = ref 0. in
  List.iter
    (fun lambda_g ->
      let l = L.mean ~system:small_system ~message ~lambda_g () in
      Alcotest.(check bool) (Printf.sprintf "monotone at %g" lambda_g) true (l >= !prev);
      prev := l)
    [ 1e-6; 1e-5; 1e-4; 1e-3; 2e-3; 4e-3 ]

let latency_monotone_property =
  QCheck.Test.make ~name:"model latency is monotone in load" ~count:100
    QCheck.(pair (float_range 1e-6 4e-3) (float_range 1e-6 4e-3))
    (fun (l1, l2) ->
      let lo = Float.min l1 l2 and hi = Float.max l1 l2 in
      let f lambda_g = L.mean ~system:small_system ~message ~lambda_g () in
      let a = f lo and b = f hi in
      (not (Float.is_finite a)) || (not (Float.is_finite b)) || a <= b +. 1e-9)

let bigger_flits_higher_latency =
  QCheck.Test.make ~name:"larger flits cost more" ~count:50
    QCheck.(float_range 1e-6 2e-3)
    (fun lambda_g ->
      let small = Presets.message ~m_flits:32 ~d_m_bytes:256. in
      let large = Presets.message ~m_flits:32 ~d_m_bytes:512. in
      let a = L.mean ~system:small_system ~message:small ~lambda_g () in
      let b = L.mean ~system:small_system ~message:large ~lambda_g () in
      (not (Float.is_finite b)) || a <= b +. 1e-9)

let longer_messages_higher_latency =
  QCheck.Test.make ~name:"longer messages cost more" ~count:50
    QCheck.(float_range 1e-6 2e-3)
    (fun lambda_g ->
      let short = Presets.message ~m_flits:32 ~d_m_bytes:256. in
      let long = Presets.message ~m_flits:64 ~d_m_bytes:256. in
      let a = L.mean ~system:small_system ~message:short ~lambda_g () in
      let b = L.mean ~system:small_system ~message:long ~lambda_g () in
      (not (Float.is_finite b)) || a <= b +. 1e-9)

let saturation_rate_brackets () =
  let sat = L.saturation_rate ~system:small_system ~message () in
  Alcotest.(check bool) "finite before" true
    (Float.is_finite (L.mean ~system:small_system ~message ~lambda_g:(0.99 *. sat) ()));
  Alcotest.(check bool) "infinite after" false
    (Float.is_finite (L.mean ~system:small_system ~message ~lambda_g:(1.01 *. sat) ()))

let paper_saturation_points () =
  (* The C/D queue divergence must land at the x-axis extent of the
     paper's figures (see DESIGN.md): ~5.2e-4, ~2.6e-4, ~1.04e-3,
     ~5.2e-4 for Figs. 3-6. *)
  let check name sys m_flits expected =
    let msg = Presets.message ~m_flits ~d_m_bytes:256. in
    let sat = L.saturation_rate ~system:sys ~message:msg () in
    Alcotest.(check bool)
      (Printf.sprintf "%s within 10%% of %g (got %g)" name expected sat)
      true
      (Float.abs (sat -. expected) /. expected < 0.1)
  in
  check "fig3" Presets.org_1120 32 5.18e-4;
  check "fig4" Presets.org_1120 64 2.59e-4;
  check "fig5" Presets.org_544 32 1.038e-3;
  check "fig6" Presets.org_544 64 5.19e-4

let fig7_improvement_direction () =
  (* +20% ICN2 bandwidth must lower latency, more so at high load,
     and help N=544 relatively more than N=1120 (paper, Section 4). *)
  let msg = Presets.message ~m_flits:128 ~d_m_bytes:256. in
  let gain sys lambda_g =
    let base = L.mean ~system:sys ~message:msg ~lambda_g () in
    let inc =
      L.mean ~system:(Presets.with_icn2_bandwidth_scaled sys ~factor:1.2) ~message:msg
        ~lambda_g ()
    in
    (base -. inc) /. base
  in
  let sat544 = L.saturation_rate ~system:Presets.org_544 ~message:msg () in
  let sat1120 = L.saturation_rate ~system:Presets.org_1120 ~message:msg () in
  let g544_low = gain Presets.org_544 (0.2 *. sat544) in
  let g544_high = gain Presets.org_544 (0.9 *. sat544) in
  let g1120_high = gain Presets.org_1120 (0.9 *. sat1120) in
  Alcotest.(check bool) "improvement positive" true (g544_low > 0.);
  Alcotest.(check bool) "bigger at high load" true (g544_high > g544_low);
  Alcotest.(check bool) "N=544 improves more than N=1120 at matched load" true
    (g544_high > g1120_high)

let heterogeneous_clusters_differ () =
  let r = L.evaluate ~system:Presets.org_544 ~message ~lambda_g:1e-4 () in
  let c0 = List.nth r.L.clusters 0 and c15 = List.nth r.L.clusters 15 in
  Alcotest.(check bool) "different sizes" true (c0.L.nodes <> c15.L.nodes);
  Alcotest.(check bool) "different U" true (Float.abs (c0.L.u -. c15.L.u) > 1e-6);
  Alcotest.(check bool) "different latency" true
    (Float.abs (c0.L.combined -. c15.L.combined) > 1e-6)

(* ---- Variants ---- *)

let variant_network_total_saturates_earlier () =
  let sat_default = L.saturation_rate ~system:Presets.org_1120 ~message () in
  let variants = { V.default with V.source_rate = V.Network_total } in
  let sat_literal = L.saturation_rate ~variants ~system:Presets.org_1120 ~message () in
  Alcotest.(check bool) "literal reading saturates much earlier" true
    (sat_literal < 0.5 *. sat_default)

let variant_zero_variance_lowers_wait () =
  let lambda_g = 4e-4 in
  let base = L.mean ~system:Presets.org_1120 ~message ~lambda_g () in
  let zero =
    L.mean
      ~variants:{ V.default with V.source_variance = V.Zero }
      ~system:Presets.org_1120 ~message ~lambda_g ()
  in
  Alcotest.(check bool) "M/D/1 source queue is faster" true (zero <= base)

let variant_lambda_i2_size_scaled_differs () =
  let lambda_g = 3e-4 in
  let base = L.mean ~system:Presets.org_1120 ~message ~lambda_g () in
  let scaled =
    L.mean
      ~variants:{ V.default with V.lambda_i2 = V.Size_scaled }
      ~system:Presets.org_1120 ~message ~lambda_g ()
  in
  Alcotest.(check bool) "readings disagree" true (Float.abs (base -. scaled) > 1e-6)

(* ---- Intra details ---- *)

let intra_zero_load_closed_form () =
  (* At λ→0 the network latency of a cluster with n=1 is M·t_cn and
     the tail time is t_cn (h=1 only). *)
  let sys = P.homogeneous ~m:8 ~tree_depth:1 ~clusters:8 ~icn1:Presets.net1 ~ecn1:Presets.net2 ~icn2:Presets.net1 in
  let b = Intra.evaluate ~system:sys ~message ~lambda_g:0. ~cluster:0 ~u:0.9 () in
  let t_cn = ST.t_cn Presets.net1 ~message in
  check_float "T_in" (32. *. t_cn) b.Intra.network;
  check_float "E_in" t_cn b.Intra.tail;
  check_float "W_in" 0. b.Intra.waiting

let intra_lambda_eq7 () =
  let b = Intra.evaluate ~system:small_system ~message ~lambda_g:1e-3 ~cluster:0 ~u:0.8 () in
  check_float "Eq. (7)" (8. *. 1e-3 *. 0.2) b.Intra.lambda_icn1

let inter_pairs_cover_all_destinations () =
  let u k = L.outgoing_probability ~system:small_system ~cluster:k in
  let b = Inter.evaluate ~system:small_system ~message ~lambda_g:1e-4 ~cluster:1 ~u () in
  Alcotest.(check int) "C-1 pairs" 3 (List.length b.Inter.pairs);
  Alcotest.(check bool) "self excluded" true
    (List.for_all (fun p -> p.Inter.dest <> 1) b.Inter.pairs)

let inter_eq35_eq38 () =
  let u k = L.outgoing_probability ~system:small_system ~cluster:k in
  let b = Inter.evaluate ~system:small_system ~message ~lambda_g:1e-4 ~cluster:0 ~u () in
  let avg f = List.fold_left (fun a p -> a +. f p) 0. b.Inter.pairs /. 3. in
  check_float "Eq. (35)" (avg (fun p -> p.Inter.latency)) b.Inter.l_ex;
  check_float "Eq. (38)" (avg (fun p -> p.Inter.cd_wait)) b.Inter.w_d;
  check_float "Eq. (39)" (b.Inter.l_ex +. b.Inter.w_d) b.Inter.total

(* ---- Utilization ---- *)

let utilization_bottleneck_is_cd () =
  (* Section 4: the inter-cluster resources, the C/D in particular,
     bound the system for both Table-1 organizations. *)
  List.iter
    (fun sys ->
      let b = Fatnet_model.Utilization.bottleneck ~system:sys ~message () in
      match b.Fatnet_model.Utilization.resource with
      | Fatnet_model.Utilization.Cd_queue _ -> ()
      | r ->
          Alcotest.failf "expected the C/D queue, got %a" Fatnet_model.Utilization.pp_resource
            r)
    [ Presets.org_1120; Presets.org_544 ]

let utilization_predicts_saturation () =
  (* The bottleneck's saturates_at must agree with the latency
     divergence point within a few percent (the blocking recursion
     adds no divergence of its own at these parameters). *)
  List.iter
    (fun sys ->
      let b = Fatnet_model.Utilization.bottleneck ~system:sys ~message () in
      let sat = L.saturation_rate ~system:sys ~message () in
      let err =
        Float.abs (b.Fatnet_model.Utilization.saturates_at -. sat) /. sat
      in
      Alcotest.(check bool)
        (Printf.sprintf "bottleneck λ_sat %.4g vs model %.4g" b.Fatnet_model.Utilization.saturates_at sat)
        true (err < 0.05))
    [ Presets.org_1120; Presets.org_544 ]

let utilization_rho_linear_in_load () =
  let at lambda_g =
    List.hd (Fatnet_model.Utilization.analyze ~system:small_system ~message ~lambda_g ())
  in
  let a = at 1e-4 and b = at 2e-4 in
  check_float "rho scales linearly" (2. *. a.Fatnet_model.Utilization.rho)
    b.Fatnet_model.Utilization.rho

let utilization_sorted_descending () =
  let entries = Fatnet_model.Utilization.analyze ~system:Presets.org_544 ~message ~lambda_g:1e-4 () in
  let rhos = List.map (fun e -> e.Fatnet_model.Utilization.rho) entries in
  Alcotest.(check bool) "sorted" true (List.sort (fun a b -> Float.compare b a) rhos = rhos);
  Alcotest.(check bool) "non-empty" true (List.length entries > 16 * 3)

(* ---- Pattern extension ---- *)

let pattern_uniform_matches_eq2 () =
  for cluster = 0 to 3 do
    check_float "uniform pattern = Eq. (2)"
      (L.outgoing_probability ~system:small_system ~cluster)
      (Fatnet_model.Pattern.outgoing_probability Fatnet_model.Pattern.Uniform
         ~system:small_system ~cluster)
  done

let pattern_local_u () =
  check_float "U = 1 - p_local" 0.3
    (Fatnet_model.Pattern.outgoing_probability
       (Fatnet_model.Pattern.Local { p_local = 0.7 })
       ~system:small_system ~cluster:0)

let pattern_uniform_evaluate_matches_latency () =
  let lambda_g = 1e-3 in
  check_float "Pattern.Uniform = Latency"
    (L.mean ~system:small_system ~message ~lambda_g ())
    (Fatnet_model.Pattern.mean ~pattern:Fatnet_model.Pattern.Uniform ~system:small_system
       ~message ~lambda_g ())

let pattern_locality_lowers_latency =
  QCheck.Test.make ~name:"more locality, lower predicted latency" ~count:50
    QCheck.(pair (float_range 0. 0.45) (float_range 1e-5 2e-3))
    (fun (p, lambda_g) ->
      let at p =
        Fatnet_model.Pattern.mean
          ~pattern:(Fatnet_model.Pattern.Local { p_local = p })
          ~system:small_system ~message ~lambda_g ()
      in
      let low = at p and high = at (p +. 0.5) in
      (not (Float.is_finite low)) || high <= low +. 1e-9)

(* ---- Tail (latency-distribution fit) ---- *)

module Tail = Fatnet_model.Tail

(* The mixture is a *distribution* refinement of the mean model: its
   weights are a probability law over (cluster, class) components and
   its implied mean Σ w (floor + wait_mean) is exactly Eq. (3). *)
let tail_mixture_preserves_mean () =
  List.iter
    (fun lambda_g ->
      let t = Tail.evaluate ~system:Presets.org_544 ~message ~lambda_g () in
      let wsum = List.fold_left (fun a c -> a +. c.Tail.weight) 0. t.Tail.components in
      let implied =
        List.fold_left
          (fun a c -> a +. (c.Tail.weight *. (c.Tail.floor +. c.Tail.wait_mean)))
          0. t.Tail.components
      in
      Alcotest.(check (float 1e-9)) "weights form a law" 1. wsum;
      Alcotest.(check (float 1e-6)) "implied mean is Eq. (3)"
        (L.mean ~system:Presets.org_544 ~message ~lambda_g ())
        implied;
      check_float "carried mean" t.Tail.mean implied)
    [ 1e-5; 1e-4; 3e-4 ]

let tail_cdf_monotone_and_bounded () =
  let t = Tail.evaluate ~system:Presets.org_544 ~message ~lambda_g:3e-4 () in
  let xs = List.init 60 (fun i -> float_of_int i *. 10.) in
  let prev = ref 0. in
  List.iter
    (fun x ->
      let f = Tail.cdf t x in
      Alcotest.(check bool) "cdf in [0,1]" true (0. <= f && f <= 1.);
      Alcotest.(check bool) "cdf non-decreasing" true (f >= !prev);
      check_float "complementary" (1. -. f) (Tail.complementary_cdf t x);
      prev := f)
    xs

let tail_quantile_inverts_cdf () =
  let t = Tail.evaluate ~system:Presets.org_544 ~message ~lambda_g:3e-4 () in
  let prev = ref 0. in
  List.iter
    (fun q ->
      let x = Tail.quantile t q in
      Alcotest.(check bool) "finite below saturation" true (Float.is_finite x);
      Alcotest.(check bool) "cdf(quantile q) >= q" true (Tail.cdf t x >= q -. 1e-9);
      (* smallest such x: a hair below, the CDF is under q *)
      Alcotest.(check bool) "minimal" true (Tail.cdf t (x *. 0.999) < q +. 1e-9);
      Alcotest.(check bool) "monotone in q" true (x >= !prev);
      prev := x)
    [ 0.5; 0.9; 0.99; 0.999 ];
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Tail.quantile: q must be in (0,1)") (fun () ->
      ignore (Tail.quantile t 1.))

let tail_quantile_monotone_in_load () =
  let at lambda_g =
    Tail.quantile (Tail.evaluate ~system:Presets.org_544 ~message ~lambda_g ()) 0.99
  in
  let light = at 1e-5 and mid = at 2e-4 and heavy = at 5e-4 in
  Alcotest.(check bool) "p99 grows with load" true (light < mid && mid < heavy);
  (* past saturation the mixture diverges like the mean does *)
  let sat = L.saturation_rate ~system:Presets.org_544 ~message () in
  Alcotest.(check bool) "saturated p99 is infinite" true (at (1.05 *. sat) = infinity)

(* M/M/1 check of the component fit: with sigma = rho and
   E[W] = rho/(mu - lambda) / ... the shifted-exponential wait CDF is
   the exact M/M/1 waiting-time law P(W <= t) = 1 - rho e^{-(mu - lambda) t}. *)
let tail_component_is_exact_mm1 () =
  let mu = 2.0 and lambda = 1.2 in
  let rho = lambda /. mu in
  let wait_mean = rho /. (mu -. lambda) in
  let c = { Tail.weight = 1.; floor = 0.; wait_mean; sigma = rho } in
  let t = { Tail.mean = wait_mean; components = [ c ] } in
  List.iter
    (fun x ->
      let exact = 1. -. (rho *. exp (-.(mu -. lambda) *. x)) in
      Alcotest.(check (float 1e-12)) "M/M/1 waiting CDF" exact (Tail.cdf t x))
    [ 0.; 0.3; 1.; 2.5; 7. ]

let tail_eval_quantile_matches_direct () =
  let ws = Fatnet_model.Eval.workspace ~system:Presets.org_544 ~message () in
  let direct =
    Tail.quantile (Tail.evaluate ~system:Presets.org_544 ~message ~lambda_g:2e-4 ()) 0.99
  in
  check_float "Eval.quantile = Tail path"
    direct
    (Fatnet_model.Eval.quantile ws ~lambda_g:2e-4 ~q:0.99)

(* ---- Sweeps ---- *)

let sweep_shapes () =
  let s = Sweep.linear ~system:small_system ~message ~lo:0. ~hi:1e-3 ~steps:5 () in
  Alcotest.(check int) "points" 5 (List.length s.Sweep.points);
  let xs = List.map (fun p -> p.Sweep.lambda_g) s.Sweep.points in
  Alcotest.(check (list (float 1e-12))) "grid" [ 0.; 2.5e-4; 5e-4; 7.5e-4; 1e-3 ] xs

let sweep_saturation_all_finite () =
  let s = Sweep.up_to_saturation ~system:small_system ~message ~steps:8 () in
  Alcotest.(check int) "all finite" 8 (List.length (Sweep.finite_points s))

let () =
  Alcotest.run "model"
    [
      ( "params",
        [
          Alcotest.test_case "cluster sizes" `Quick cluster_sizes;
          Alcotest.test_case "Table 1" `Quick table1_organizations;
          Alcotest.test_case "Table 2" `Quick table2_networks;
          Alcotest.test_case "icn2 depth inference" `Quick icn2_depth_inference;
          Alcotest.test_case "validation" `Quick validation_rejects_bad_systems;
          Alcotest.test_case "icn2 depth edge cases" `Quick icn2_depth_edge_cases;
          Alcotest.test_case "validation edge cases" `Quick validation_edge_cases;
          Alcotest.test_case "scaled icn2" `Quick scaled_icn2_bandwidth;
        ] );
      ( "service times",
        [
          Alcotest.test_case "Eqs. (11)-(12)" `Quick service_time_forms;
          Alcotest.test_case "relaxing factor" `Quick relaxing_factor_direction;
        ] );
      ( "latency",
        [
          Alcotest.test_case "Eq. (2)" `Quick outgoing_probability_eq2;
          Alcotest.test_case "Eq. (3) weighting" `Quick latency_weighted_average;
          Alcotest.test_case "single cluster" `Quick latency_single_cluster_is_intra;
          Alcotest.test_case "monotone" `Quick latency_monotone_in_lambda;
          Alcotest.test_case "saturation bracket" `Quick saturation_rate_brackets;
          Alcotest.test_case "paper saturation points" `Quick paper_saturation_points;
          Alcotest.test_case "fig7 direction" `Quick fig7_improvement_direction;
          Alcotest.test_case "heterogeneity" `Quick heterogeneous_clusters_differ;
          QCheck_alcotest.to_alcotest latency_monotone_property;
          QCheck_alcotest.to_alcotest bigger_flits_higher_latency;
          QCheck_alcotest.to_alcotest longer_messages_higher_latency;
        ] );
      ( "variants",
        [
          Alcotest.test_case "network-total saturates earlier" `Quick
            variant_network_total_saturates_earlier;
          Alcotest.test_case "zero variance" `Quick variant_zero_variance_lowers_wait;
          Alcotest.test_case "lambda_i2 readings differ" `Quick
            variant_lambda_i2_size_scaled_differs;
        ] );
      ( "components",
        [
          Alcotest.test_case "intra zero load" `Quick intra_zero_load_closed_form;
          Alcotest.test_case "Eq. (7)" `Quick intra_lambda_eq7;
          Alcotest.test_case "inter pairs" `Quick inter_pairs_cover_all_destinations;
          Alcotest.test_case "Eqs. (35)/(38)/(39)" `Quick inter_eq35_eq38;
        ] );
      ( "utilization",
        [
          Alcotest.test_case "C/D is the bottleneck" `Quick utilization_bottleneck_is_cd;
          Alcotest.test_case "predicts saturation" `Quick utilization_predicts_saturation;
          Alcotest.test_case "linear in load" `Quick utilization_rho_linear_in_load;
          Alcotest.test_case "sorted" `Quick utilization_sorted_descending;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "uniform = Eq. (2)" `Quick pattern_uniform_matches_eq2;
          Alcotest.test_case "local U" `Quick pattern_local_u;
          Alcotest.test_case "uniform evaluate" `Quick pattern_uniform_evaluate_matches_latency;
          QCheck_alcotest.to_alcotest pattern_locality_lowers_latency;
        ] );
      ( "tail",
        [
          Alcotest.test_case "mixture preserves Eq. (3)" `Quick tail_mixture_preserves_mean;
          Alcotest.test_case "cdf monotone and bounded" `Quick tail_cdf_monotone_and_bounded;
          Alcotest.test_case "quantile inverts cdf" `Quick tail_quantile_inverts_cdf;
          Alcotest.test_case "quantile monotone in load" `Quick tail_quantile_monotone_in_load;
          Alcotest.test_case "M/M/1 exact" `Quick tail_component_is_exact_mm1;
          Alcotest.test_case "Eval.quantile" `Quick tail_eval_quantile_matches_direct;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "linear grid" `Quick sweep_shapes;
          Alcotest.test_case "up to saturation" `Quick sweep_saturation_all_finite;
        ] );
    ]
