(* Integration tests: the analytical model against the discrete-event
   simulator on small systems, and the figure/ablation specs.

   These are the repository's core claim checks — the paper's
   validation methodology in miniature.  Tolerances are loose: the
   quick protocol uses fewer messages than the paper's, and the model
   itself is only claimed accurate to 4-8 % at light load. *)

module L = Fatnet_model.Latency
module Presets = Fatnet_model.Presets
module Runner = Fatnet_sim.Runner
module Scenario = Fatnet_scenario.Scenario
module Figures = Fatnet_experiments.Figures
module Ablations = Fatnet_experiments.Ablations
module Parallel = Fatnet_experiments.Parallel
module Engine = Fatnet_experiments.Sweep_engine
module Series = Fatnet_report.Series

let message = Presets.message ~m_flits:32 ~d_m_bytes:256.

let small_system =
  Fatnet_model.Params.homogeneous ~m:4 ~tree_depth:2 ~clusters:4 ~icn1:Presets.net1
    ~ecn1:Presets.net2 ~icn2:Presets.net1

let hetero_system =
  Fatnet_model.Params.make_system ~m:4 ~icn2:Presets.net1
    (List.concat
       [
         List.init 2 (fun _ ->
             { Fatnet_model.Params.tree_depth = 1; icn1 = Presets.net1; ecn1 = Presets.net2 });
         List.init 2 (fun _ ->
             { Fatnet_model.Params.tree_depth = 2; icn1 = Presets.net1; ecn1 = Presets.net2 });
       ])

let sim_config =
  { Runner.quick_config with Runner.warmup = 500; measured = 6000; drain = 500 }

let relative_error sys msg lambda_g =
  let model = L.mean ~system:sys ~message:msg ~lambda_g () in
  let sim = Runner.mean_latency ~config:sim_config ~system:sys ~message:msg ~lambda_g () in
  Fatnet_numerics.Float_utils.relative_error ~expected:sim ~actual:model

let model_tracks_sim_light_load () =
  let sat = L.saturation_rate ~system:small_system ~message () in
  let err = relative_error small_system message (0.1 *. sat) in
  Alcotest.(check bool)
    (Printf.sprintf "light-load error %.1f%% < 20%%" (100. *. err))
    true (err < 0.20)

let model_tracks_sim_moderate_load () =
  let sat = L.saturation_rate ~system:small_system ~message () in
  let err = relative_error small_system message (0.4 *. sat) in
  Alcotest.(check bool)
    (Printf.sprintf "moderate-load error %.1f%% < 35%%" (100. *. err))
    true (err < 0.35)

let model_tracks_sim_heterogeneous () =
  let sat = L.saturation_rate ~system:hetero_system ~message () in
  let err = relative_error hetero_system message (0.15 *. sat) in
  Alcotest.(check bool)
    (Printf.sprintf "heterogeneous light-load error %.1f%% < 20%%" (100. *. err))
    true (err < 0.20)

let sim_diverges_near_model_saturation () =
  (* Near the model's saturation point the simulated latency must far
     exceed the light-load latency — both curves blow up in the same
     region (Figs. 3-6). *)
  let sat = L.saturation_rate ~system:small_system ~message () in
  let light = Runner.mean_latency ~config:sim_config ~system:small_system ~message
      ~lambda_g:(0.1 *. sat) () in
  let heavy = Runner.mean_latency ~config:sim_config ~system:small_system ~message
      ~lambda_g:(0.95 *. sat) () in
  Alcotest.(check bool) "simulated latency grows sharply" true (heavy > 3. *. light)

let intra_component_matches_closely () =
  (* The intra-cluster part of the model is very accurate (no C/D
     approximations): check it against the simulated intra class. *)
  let lambda_g = 1e-3 in
  let r = Runner.run ~config:sim_config ~system:small_system ~message ~lambda_g () in
  let model = L.evaluate ~system:small_system ~message ~lambda_g () in
  let model_intra =
    (List.hd model.L.clusters).L.intra.Fatnet_model.Intra.total
  in
  let sim_intra = r.Runner.intra_latency.Fatnet_stats.Summary.mean in
  let err = Fatnet_numerics.Float_utils.relative_error ~expected:sim_intra ~actual:model_intra in
  Alcotest.(check bool)
    (Printf.sprintf "intra error %.1f%% < 10%%" (100. *. err))
    true (err < 0.10)

let message_size_ordering_holds_in_both () =
  (* d_m = 512 must cost more than 256 in both model and simulation
     (the Lm=512 curve sits above Lm=256 in every figure). *)
  let small = Presets.message ~m_flits:32 ~d_m_bytes:256. in
  let large = Presets.message ~m_flits:32 ~d_m_bytes:512. in
  let lambda_g = 1e-3 in
  let m1 = L.mean ~system:small_system ~message:small ~lambda_g () in
  let m2 = L.mean ~system:small_system ~message:large ~lambda_g () in
  let s1 = Runner.mean_latency ~config:sim_config ~system:small_system ~message:small ~lambda_g () in
  let s2 = Runner.mean_latency ~config:sim_config ~system:small_system ~message:large ~lambda_g () in
  Alcotest.(check bool) "model ordering" true (m2 > m1);
  Alcotest.(check bool) "sim ordering" true (s2 > s1)

let figure_specs_complete () =
  Alcotest.(check int) "five figures" 5 (List.length Figures.all);
  List.iter
    (fun spec ->
      Alcotest.(check bool) (spec.Figures.id ^ " has curves") true (spec.Figures.curves <> []);
      Alcotest.(check bool) (spec.Figures.id ^ " positive range") true (spec.Figures.lambda_max > 0.))
    Figures.all;
  Alcotest.(check bool) "find works" true (Figures.find "fig3" <> None);
  Alcotest.(check bool) "find rejects" true (Figures.find "nope" = None)

let scenario_files_match_presets () =
  (* The checked-in examples/*.scn ARE the figure presets: loading one
     and fanning it out with [of_scenario] must be structurally equal
     to the in-code spec — this is what makes the [--scenario] path
     bit-for-bit identical to the preset path (same scenario values,
     same cache keys, same CSVs). *)
  List.iter
    (fun spec ->
      match Figures.to_scenario spec with
      | None -> () (* fig7 is not a two-flit-size validation figure *)
      | Some base -> (
          (* dune runtest runs from _build/default/test; dune exec
             from the workspace root *)
          let rel = "examples/" ^ spec.Figures.id ^ ".scn" in
          let path = if Sys.file_exists rel then rel else Filename.concat ".." rel in
          match Scenario.load path with
          | Error e -> Alcotest.fail e
          | Ok loaded ->
              Alcotest.(check bool) (spec.Figures.id ^ ".scn equals preset base") true
                (loaded = base);
              Alcotest.(check string)
                (spec.Figures.id ^ ".scn same cache identity")
                (Scenario.hash base) (Scenario.hash loaded);
              Alcotest.(check bool)
                (spec.Figures.id ^ " fans out to the same spec")
                true
                (Figures.of_scenario loaded = spec)))
    Figures.all

let figure_model_series_shape () =
  match Figures.find "fig7" with
  | None -> Alcotest.fail "fig7 missing"
  | Some spec ->
      let series = Figures.model_series spec ~steps:8 in
      Alcotest.(check int) "four curves" 4 (List.length series);
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (s.Fatnet_report.Series.name ^ " non-empty")
            true
            (s.Fatnet_report.Series.points <> []))
        series

let fig7_increased_below_base () =
  match Figures.find "fig7" with
  | None -> Alcotest.fail "fig7 missing"
  | Some spec -> (
      let series = Figures.model_series spec ~steps:10 in
      let find name =
        List.find (fun s -> s.Fatnet_report.Series.name = "model " ^ name) series
      in
      let base = find "N=544, Base" and inc = find "N=544, Increased" in
      (* compare at shared x points *)
      match (base.Fatnet_report.Series.points, inc.Fatnet_report.Series.points) with
      | (x1, y1) :: _, (x2, y2) :: _ ->
          Alcotest.(check (float 1e-12)) "same grid" x1 x2;
          Alcotest.(check bool) "increased bandwidth lowers latency" true (y2 <= y1)
      | _ -> Alcotest.fail "empty series")

let ablations_run () =
  List.iter
    (fun a ->
      match a.Ablations.id with
      | "cd-mode" -> () (* exercised separately; needs simulation time *)
      | _ ->
          let table =
            a.Ablations.run ~steps:3
              ~protocol:
                { Scenario.quick_protocol with Scenario.warmup = 50; measured = 300; drain = 50 }
          in
          Alcotest.(check bool)
            (a.Ablations.id ^ " renders")
            true
            (String.length (Fatnet_report.Table.to_string table) > 0))
    Ablations.all

let ablation_lookup () =
  Alcotest.(check bool) "find" true (Ablations.find "lambda-i2" <> None);
  Alcotest.(check bool) "missing" true (Ablations.find "nope" = None)

let network_heterogeneity_tracked () =
  (* Clusters with genuinely different ECN1 bandwidths — the paper's
     "network heterogeneity" — must still be tracked by the model. *)
  let ecn1_fast = { Presets.net2 with Fatnet_model.Params.bandwidth = 400. } in
  let system =
    Fatnet_model.Params.make_system ~m:4 ~icn2:Presets.net1
      [
        { Fatnet_model.Params.tree_depth = 2; icn1 = Presets.net1; ecn1 = Presets.net2 };
        { Fatnet_model.Params.tree_depth = 2; icn1 = Presets.net1; ecn1 = ecn1_fast };
        { Fatnet_model.Params.tree_depth = 2; icn1 = Presets.net1; ecn1 = Presets.net2 };
        { Fatnet_model.Params.tree_depth = 2; icn1 = Presets.net1; ecn1 = ecn1_fast };
      ]
  in
  let sat = L.saturation_rate ~system ~message () in
  let lambda_g = 0.15 *. sat in
  let model = L.mean ~system ~message ~lambda_g () in
  let sim = Runner.mean_latency ~config:sim_config ~system ~message ~lambda_g () in
  let err = Fatnet_numerics.Float_utils.relative_error ~expected:sim ~actual:model in
  Alcotest.(check bool)
    (Printf.sprintf "heterogeneous-network error %.1f%% < 20%%" (100. *. err))
    true (err < 0.20);
  (* and the model must see the difference between the two ECN1s *)
  let r = L.evaluate ~system ~message ~lambda_g () in
  let lat i = (List.nth r.L.clusters i).L.combined in
  Alcotest.(check bool) "fast-egress cluster is faster" true (lat 1 < lat 0)

let parallel_map_matches_sequential () =
  let xs = List.init 37 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "order and values" (List.map f xs)
    (Parallel.map ~domains:4 f xs);
  Alcotest.(check (list int)) "single domain" (List.map f xs)
    (Parallel.map ~domains:1 f xs);
  Alcotest.(check (list int)) "empty" [] (Parallel.map ~domains:4 f [])

let parallel_map_propagates_exceptions () =
  Alcotest.check_raises "exception surfaces" (Parallel.Failures [ (5, Exit) ]) (fun () ->
      ignore
        (Parallel.map ~domains:3
           (fun x -> if x = 5 then raise Exit else x)
           (List.init 8 (fun i -> i))))

let parallel_map_aggregates_failures () =
  (* Every element is attempted; ALL failures come back, in index
     order, not just the first. *)
  let f x = if x mod 3 = 0 then failwith (string_of_int x) else x in
  (try
     ignore (Parallel.map ~domains:4 f (List.init 7 (fun i -> i)));
     Alcotest.fail "expected Failures"
   with Parallel.Failures fs ->
     Alcotest.(check (list int)) "all failing indices" [ 0; 3; 6 ] (List.map fst fs);
     List.iter
       (fun (i, e) ->
         Alcotest.(check string)
           "failure carries its own payload"
           (string_of_int i)
           (match e with Failure m -> m | _ -> "not a Failure"))
       fs);
  let outcomes = Parallel.try_map ~domains:4 f (List.init 4 (fun i -> i)) in
  Alcotest.(check (list bool))
    "try_map reports per-slot outcomes" [ false; true; true; false ]
    (List.map (function Ok _ -> true | Error _ -> false) outcomes)

(* The tentpole's golden claim: on the paper's N=544 organization
   (fig5, both flit sizes) the model's fitted p99 tracks the
   simulator's P² p99 at light load.  Measured agreement with the
   quick protocol: ≈10–11 % at 10 % of saturation and ≈21–23 % at
   25 %; the bounds leave ~2× headroom against protocol drift.  Past
   mid load the fit diverges like the mean model does (the simulator
   saturates earlier), so no bound is claimed there — see
   EXPERIMENTS.md. *)
let predicted_p99_tracks_sim_fig5 () =
  let spec =
    match Figures.find "fig5" with Some s -> s | None -> Alcotest.fail "fig5 missing"
  in
  List.iter
    (fun (c : Figures.curve) ->
      let s = { c.Figures.scenario with Scenario.protocol = Scenario.quick_protocol } in
      let sat = Scenario.saturation_rate s in
      let ws = Scenario.evaluator s in
      List.iter
        (fun (frac, bound) ->
          let lambda_g = frac *. sat in
          let model = Fatnet_model.Eval.quantile ws ~lambda_g ~q:0.99 in
          let sim =
            (Runner.run_scenario ~lambda_g s).Runner.latency.Fatnet_stats.Summary.p99
          in
          let err = Fatnet_numerics.Float_utils.relative_error ~expected:sim ~actual:model in
          Alcotest.(check bool)
            (Printf.sprintf "%s at %.0f%% of saturation: p99 error %.3f within %.2f"
               c.Figures.label (100. *. frac) err bound)
            true (err <= bound))
        [ (0.1, 0.25); (0.25, 0.45) ])
    spec.Figures.curves

let figure_quantile_series_shape () =
  let fig5 = match Figures.find "fig5" with Some s -> s | None -> Alcotest.fail "no fig5" in
  Alcotest.(check string) "family id" "fig5-p99" (Figures.quantile_id fig5 ~q:0.99);
  Alcotest.(check string) "ladder name p50" "p50" (Figures.quantile_name 0.5);
  Alcotest.(check string) "ladder name p999" "p999" (Figures.quantile_name 0.999);
  let fig7 = match Figures.find "fig7" with Some s -> s | None -> Alcotest.fail "no fig7" in
  List.iter
    (fun spec ->
      let p99 = Figures.model_quantile_series spec ~steps:8 ~q:0.99 in
      let p50 = Figures.model_quantile_series spec ~steps:8 ~q:0.5 in
      Alcotest.(check int) "one series per curve"
        (List.length spec.Figures.curves)
        (List.length p99);
      List.iter2
        (fun s9 s5 ->
          Alcotest.(check bool) "named model p99" true
            (String.length s9.Series.name >= 9 && String.sub s9.Series.name 0 9 = "model p99");
          Alcotest.(check int) "full grid" 8 (List.length s9.Series.points);
          List.iter2
            (fun (x9, y9) (x5, y5) ->
              Alcotest.(check (float 0.)) "same grid" x5 x9;
              Alcotest.(check bool) "p99 dominates p50" true
                (y9 >= y5 || y9 = infinity))
            s9.Series.points s5.Series.points)
        p99 p50)
    [ fig5; fig7 ]

(* --- sweep engine ------------------------------------------------- *)

let engine_protocol =
  { Scenario.quick_protocol with Scenario.warmup = 50; measured = 400; drain = 50 }

let engine_replication =
  { Scenario.target_rel = 0.1; confidence = 0.95; min_reps = 2; max_reps = 3; target = Scenario.Mean }

let engine_config ~domains ~cache =
  { Engine.default_config with Engine.domains = Some domains; cache }

let engine_point lambda_g =
  Scenario.make ~name:"itest" ~system:small_system ~message ~protocol:engine_protocol
    ~replication:engine_replication
    ~load:(Scenario.Fixed lambda_g)
    ()

let with_temp_cache_dir f =
  let dir = Filename.temp_file "fatnet-cache-test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Fatnet_experiments.Point_cache.clear ~dir;
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let sweep_bitwise_deterministic () =
  (* The satellite regression: regenerating a figure with [domains=1]
     and [domains=recommended] must produce bit-identical fig*.csv
     content, and a cache hit must be bit-identical to recomputation.
     Compared as the exact CSV strings [write_csv] would emit. *)
  let spec =
    match Figures.find "fig5" with Some s -> s | None -> Alcotest.fail "fig5 missing"
  in
  let csv engine =
    Series.to_csv
      (Figures.sim_series ~protocol:engine_protocol ~replication:engine_replication ~engine
         spec ~steps:3)
  in
  let sequential = csv (engine_config ~domains:1 ~cache:Engine.No_cache) in
  let recommended = max 2 (Parallel.recommended_domains ()) in
  let parallel = csv (engine_config ~domains:recommended ~cache:Engine.No_cache) in
  Alcotest.(check string) "domains=1 vs domains=recommended" sequential parallel;
  with_temp_cache_dir (fun dir ->
      let cold = csv (engine_config ~domains:recommended ~cache:(Engine.Cache_dir dir)) in
      let warm = csv (engine_config ~domains:1 ~cache:(Engine.Cache_dir dir)) in
      Alcotest.(check string) "cold cached vs uncached" sequential cold;
      Alcotest.(check string) "cache hit vs recomputation" sequential warm)

let sweep_engine_stats_consistent () =
  let points = List.map engine_point [ 1e-3; 2e-3 ] in
  with_temp_cache_dir (fun dir ->
      let run () =
        Engine.run ~config:(engine_config ~domains:2 ~cache:(Engine.Cache_dir dir)) points
      in
      let cold_outcome = run () in
      let results = Engine.results_exn cold_outcome in
      let cold = cold_outcome.Engine.stats in
      Alcotest.(check int) "result per point" 2 (Array.length results);
      Alcotest.(check int) "all executed cold" 2 cold.Engine.executed;
      Alcotest.(check int) "nothing quarantined" 0 cold.Engine.quarantined;
      Alcotest.(check bool) "cache intact" false cold.Engine.cache_degraded;
      Alcotest.(check int) "no hits cold" 0 cold.Engine.cache_hits;
      Array.iter
        (fun r ->
          Alcotest.(check bool) "not from cache" false r.Engine.from_cache;
          Alcotest.(check bool)
            "replications within spec" true
            (r.Engine.replications >= engine_replication.Scenario.min_reps
            && r.Engine.replications <= engine_replication.Scenario.max_reps))
        results;
      Alcotest.(check int) "occupancy per domain" cold.Engine.domains_used
        (Array.length cold.Engine.occupancy);
      let warm_outcome = run () in
      let warm_results = Engine.results_exn warm_outcome in
      let warm = warm_outcome.Engine.stats in
      Alcotest.(check int) "all hits warm" 2 warm.Engine.cache_hits;
      Alcotest.(check int) "nothing executed warm" 0 warm.Engine.executed;
      Array.iteri
        (fun i r ->
          Alcotest.(check bool) "from cache" true r.Engine.from_cache;
          Alcotest.(check (float 0.)) "bit-identical mean latency"
            results.(i).Engine.summary.Fatnet_stats.Summary.mean
            r.Engine.summary.Fatnet_stats.Summary.mean)
        warm_results)

let sweep_engine_memo_layer () =
  (* The in-memory memo sits above the disk cache: a second run with
     the same memo serves every point from memory — no execution, no
     disk — with bit-identical results. *)
  let points = List.map engine_point [ 1e-3; 2e-3; 3e-3 ] in
  let memo = Fatnet_numerics.Memo.create () in
  let config =
    { (engine_config ~domains:2 ~cache:Engine.No_cache) with Engine.memo = Some memo }
  in
  let cold_outcome = Engine.run ~config points in
  let cold = Engine.results_exn cold_outcome in
  Alcotest.(check int) "all executed cold" 3 cold_outcome.Engine.stats.Engine.executed;
  Alcotest.(check int) "no memo hits cold" 0 cold_outcome.Engine.stats.Engine.memo_hits;
  let warm_outcome = Engine.run ~config points in
  let warm = Engine.results_exn warm_outcome in
  Alcotest.(check int) "all memo hits warm" 3 warm_outcome.Engine.stats.Engine.memo_hits;
  Alcotest.(check int) "nothing executed warm" 0 warm_outcome.Engine.stats.Engine.executed;
  Alcotest.(check int) "no disk hits warm" 0 warm_outcome.Engine.stats.Engine.cache_hits;
  Array.iteri
    (fun i r ->
      Alcotest.(check (float 0.)) "bit-identical mean latency"
        cold.(i).Engine.summary.Fatnet_stats.Summary.mean
        r.Engine.summary.Fatnet_stats.Summary.mean)
    warm

let sweep_engine_aggregates_failures () =
  (* Invalid points must not abort the sweep: every valid point still
     runs, the broken ones are quarantined (indexed by input
     position), and strict unwrapping re-raises them.  The invalid
     points are built by record update — [Scenario.make] would
     (rightly) refuse them. *)
  let tiny = { Scenario.quick_protocol with Scenario.warmup = 10; measured = 100; drain = 10 } in
  let base =
    Scenario.make ~system:small_system ~message ~protocol:tiny ~load:(Scenario.Fixed 1e-3) ()
  in
  let point lambda_g = { base with Scenario.load = Scenario.Fixed lambda_g } in
  let config =
    { Engine.default_config with Engine.domains = Some 2; cache = Engine.No_cache; retries = 1 }
  in
  let points = [ point 1e-3; point (-1.); point 0. ] in
  let outcome = Engine.run ~config points in
  Alcotest.(check (list int))
    "quarantined input indices" [ 1; 2 ]
    (List.map (fun f -> f.Engine.index) outcome.Engine.quarantined);
  Alcotest.(check bool)
    "each bad point was retried before quarantine" true
    (List.for_all (fun f -> f.Engine.attempts = 2) outcome.Engine.quarantined);
  Alcotest.(check bool) "good point survived" true (outcome.Engine.results.(0) <> None);
  Alcotest.(check int) "stats agree" 2 outcome.Engine.stats.Engine.quarantined;
  (try
     ignore (Engine.results_exn outcome);
     Alcotest.fail "expected Failures from results_exn"
   with Parallel.Failures fs ->
     Alcotest.(check (list int)) "strict unwrap re-raises by index" [ 1; 2 ] (List.map fst fs));
  (* fail_fast restores the all-or-nothing contract. *)
  match Engine.run ~config:{ config with Engine.fail_fast = true } points with
  | _ -> Alcotest.fail "expected Failures under fail_fast"
  | exception Parallel.Failures ((_ :: _) as fs) ->
      List.iter
        (fun (_, e) ->
          match e with
          | Engine.Point_failure f ->
              Alcotest.(check bool) "no retries under fail_fast" true (f.Engine.attempts = 1)
          | e -> Alcotest.fail ("unexpected failure payload: " ^ Printexc.to_string e))
        fs

let hotspot_raises_latency () =
  (* The future-work non-uniform pattern: a hotspot must hurt. *)
  let lambda_g = 2e-3 in
  let uniform =
    Runner.mean_latency ~config:sim_config ~system:small_system ~message ~lambda_g ()
  in
  let hotspot =
    Runner.mean_latency
      ~config:
        { sim_config with Runner.destination = Fatnet_workload.Destination.Hotspot { node = 0; fraction = 0.4 } }
      ~system:small_system ~message ~lambda_g ()
  in
  Alcotest.(check bool) "hotspot hurts" true (hotspot > uniform)

let locality_model_extension_tracks_sim () =
  (* This repository's extension of the model to local traffic (the
     paper's future work) must track the simulator at light load. *)
  let sat = L.saturation_rate ~system:small_system ~message () in
  let lambda_g = 0.25 *. sat in
  List.iter
    (fun p ->
      let model =
        Fatnet_model.Pattern.mean
          ~pattern:(Fatnet_model.Pattern.Local { p_local = p })
          ~system:small_system ~message ~lambda_g ()
      in
      let sim =
        Runner.mean_latency
          ~config:
            { sim_config with Runner.destination = Fatnet_workload.Destination.Local { p_local = p } }
          ~system:small_system ~message ~lambda_g ()
      in
      let err = Fatnet_numerics.Float_utils.relative_error ~expected:sim ~actual:model in
      Alcotest.(check bool)
        (Printf.sprintf "p_local=%.2f error %.1f%% < 20%%" p (100. *. err))
        true (err < 0.20))
    [ 0.5; 0.75; 0.9 ]

let locality_lowers_latency () =
  (* Keeping traffic local avoids the slow egress networks. *)
  let lambda_g = 1e-3 in
  let uniform =
    Runner.mean_latency ~config:sim_config ~system:small_system ~message ~lambda_g ()
  in
  let local =
    Runner.mean_latency
      ~config:
        { sim_config with Runner.destination = Fatnet_workload.Destination.Local { p_local = 0.9 } }
      ~system:small_system ~message ~lambda_g ()
  in
  Alcotest.(check bool) "locality helps" true (local < uniform)

let () =
  Alcotest.run "integration"
    [
      ( "model vs simulation",
        [
          Alcotest.test_case "light load" `Slow model_tracks_sim_light_load;
          Alcotest.test_case "moderate load" `Slow model_tracks_sim_moderate_load;
          Alcotest.test_case "heterogeneous" `Slow model_tracks_sim_heterogeneous;
          Alcotest.test_case "divergence near saturation" `Slow sim_diverges_near_model_saturation;
          Alcotest.test_case "intra component" `Slow intra_component_matches_closely;
          Alcotest.test_case "message size ordering" `Slow message_size_ordering_holds_in_both;
          Alcotest.test_case "p99 golden (fig5)" `Slow predicted_p99_tracks_sim_fig5;
        ] );
      ( "figures",
        [
          Alcotest.test_case "specs complete" `Quick figure_specs_complete;
          Alcotest.test_case "scenario files match presets" `Quick scenario_files_match_presets;
          Alcotest.test_case "model series" `Quick figure_model_series_shape;
          Alcotest.test_case "quantile series" `Quick figure_quantile_series_shape;
          Alcotest.test_case "fig7 direction" `Quick fig7_increased_below_base;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "all run" `Quick ablations_run;
          Alcotest.test_case "lookup" `Quick ablation_lookup;
        ] );
      ( "heterogeneity and parallelism",
        [
          Alcotest.test_case "network heterogeneity" `Slow network_heterogeneity_tracked;
          Alcotest.test_case "parallel map" `Quick parallel_map_matches_sequential;
          Alcotest.test_case "parallel exceptions" `Quick parallel_map_propagates_exceptions;
          Alcotest.test_case "parallel failure aggregation" `Quick
            parallel_map_aggregates_failures;
        ] );
      ( "sweep engine",
        [
          Alcotest.test_case "bitwise determinism" `Slow sweep_bitwise_deterministic;
          Alcotest.test_case "stats and cache round-trip" `Slow sweep_engine_stats_consistent;
          Alcotest.test_case "memo layer" `Slow sweep_engine_memo_layer;
          Alcotest.test_case "failure aggregation" `Quick sweep_engine_aggregates_failures;
        ] );
      ( "workload extensions",
        [
          Alcotest.test_case "hotspot" `Slow hotspot_raises_latency;
          Alcotest.test_case "locality" `Slow locality_lowers_latency;
          Alcotest.test_case "locality model extension" `Slow locality_model_extension_tracks_sim;
        ] );
    ]
